package native

import (
	"math"
	"sync"
	"sync/atomic"

	"natle/internal/backend"
	"natle/internal/natle"
	"natle/internal/scheme"
)

// maxGroups bounds the native stand-in for sockets (thread groups).
const maxGroups = 8

// NATLEConfig tunes the wall-clock throttling loop. The simulated
// NATLE profiles by running each mode for a slice of every cycle and
// counting acquisitions on virtual time; on real hardware that
// profiling tax is pure overhead, so the native variant instead
// smooths the per-group commit throughput it observes anyway into an
// EWMA and re-decides once per window.
type NATLEConfig struct {
	// Window is the decision window in wall-clock nanoseconds
	// (default 2ms; the paper's 300ms cycle scaled to bench-length
	// native runs).
	Window int64
	// Wait is how long a throttled thread waits before re-checking
	// admission (default 20us).
	Wait int64
	// MaxWait is the starvation watchdog: cumulative throttled wait
	// before a section proceeds regardless (default 2*Window).
	MaxWait int64
	// Alpha is the EWMA weight of the newest window (default 0.5).
	Alpha float64
	// AbortFrac is the throttling trigger: shape admission only while
	// the window's abort fraction exceeds it (default 0.05); below
	// it, elision is working and every group runs.
	AbortFrac float64
	// Warmup is the minimum commits a window needs before its numbers
	// may drive a throttling decision (default 256, as in the paper).
	Warmup uint64
}

// DefaultNATLEConfig returns the defaults above.
func DefaultNATLEConfig() NATLEConfig {
	return NATLEConfig{
		Window:    2_000_000,
		Wait:      20_000,
		Alpha:     0.5,
		AbortFrac: 0.05,
		Warmup:    256,
	}
}

// padCounter is a cache-line-padded counter, so per-group commit
// bumps from different goroutines do not false-share.
//
//natlevet:percpu
type padCounter struct {
	v atomic.Uint64
	_ [56]byte
}

// NATLE is native-tle plus per-lock adaptive group throttling driven
// by a wall-clock EWMA of per-group commit throughput.
//
//natlevet:percpu
type NATLE struct {
	// Cold header, read-only after NewNATLE: exactly one cache line
	// (8 + 8 + 48 bytes), so no hot word below shares it.
	inner  *TLE
	groups int
	cfg    NATLEConfig

	// windowStart and decision are read by every admitted() poll on
	// every critical section; each owns a line so a window rollover CAS
	// on one does not invalidate reads of the other.
	windowStart atomic.Int64 // ns; 0 = not started
	_           [56]byte
	decision    atomic.Uint64 // pref<<32 | alt<<16 | permille
	_           [56]byte

	// Per-group commit counters, one line per group: the paper's
	// per-socket acquisition profile, minus the false sharing.
	commits [maxGroups]padCounter

	// Everything below windowStart's CAS winner touches once per
	// window, grouped by writer.
	ewma [maxGroups]atomic.Uint64 // math.Float64bits of commits/sec

	decider struct { // written only by the elected decider thread
		lastAttempts atomic.Uint64 // inner counter snapshot at last decision
		lastAborts   atomic.Uint64
		decisions    atomic.Uint64
	}
	_ [40]byte

	throttle struct { // written by threads that were shaped
		throttled   atomic.Uint64 // sections that waited at least once
		starvations atomic.Uint64 // watchdog-forced proceeds
	}
	_ [48]byte

	tl struct {
		sync.Mutex
		samples []natle.ModeSample
	}
	_ [32]byte
}

// NewNATLE builds a native-natle lock over inner for the given group
// count. Zero config fields select DefaultNATLEConfig values.
func NewNATLE(inner *TLE, groups int, cfg NATLEConfig) *NATLE {
	def := DefaultNATLEConfig()
	if cfg.Window <= 0 {
		cfg.Window = def.Window
	}
	if cfg.Wait <= 0 {
		cfg.Wait = def.Wait
	}
	if cfg.MaxWait <= 0 {
		cfg.MaxWait = 2 * cfg.Window
	}
	if cfg.Alpha <= 0 || cfg.Alpha > 1 {
		cfg.Alpha = def.Alpha
	}
	if cfg.AbortFrac <= 0 {
		cfg.AbortFrac = def.AbortFrac
	}
	if cfg.Warmup == 0 {
		cfg.Warmup = def.Warmup
	}
	if groups < 1 {
		groups = 1
	}
	if groups > maxGroups {
		groups = maxGroups
	}
	n := &NATLE{inner: inner, groups: groups, cfg: cfg}
	// Until the first decision: everyone runs.
	n.decision.Store(n.pack(groups, groups, 1000))
	return n
}

func (n *NATLE) pack(pref, alt int, permille int64) uint64 {
	return uint64(pref)<<32 | uint64(alt)<<16 | uint64(permille)
}

// Name implements backend.CS.
func (n *NATLE) Name() string { return "native-natle(" + n.inner.Name() + ")" }

// Stats implements scheme.BackendInstance: the inner elision counters
// plus the decision timeline and the throttling extras.
func (n *NATLE) Stats() scheme.Stats {
	n.tl.Lock()
	timeline := append([]natle.ModeSample(nil), n.tl.samples...)
	n.tl.Unlock()
	return scheme.Stats{
		TLE:      n.inner.st.tleStats(),
		Timeline: timeline,
		Extra: map[string]uint64{
			"natle_decisions":      n.decider.decisions.Load(),
			"natle_throttled":      n.throttle.throttled.Load(),
			"natle_starvations":    n.throttle.starvations.Load(),
			"natle_inner_fallback": n.inner.st.fallbacks.Load(),
		},
	}
}

// Critical implements backend.CS: wait until the thread's group is
// admitted by the current decision (bounded by the starvation
// watchdog), then run under the inner native-tle lock.
//
//natlevet:hotpath
func (n *NATLE) Critical(bc backend.Ctx, body func()) {
	c := bc.(*Thread)
	if c.tx.active {
		body()
		return
	}
	g := c.Socket()
	n.maybeDecide(c)
	var waited int64
	for !n.admitted(c, g) {
		if waited >= n.cfg.MaxWait {
			n.throttle.starvations.Add(1)
			break
		}
		c.spinWait(n.cfg.Wait)
		waited += n.cfg.Wait
		n.maybeDecide(c)
	}
	if waited > 0 {
		n.throttle.throttled.Add(1)
	}
	n.inner.Critical(c, body)
	n.commits[g].v.Add(1)
}

// admitted checks the thread's group against the current decision:
// the preferred group owns the first permille share of each window
// position, the alternate the rest (the paper's proportional quantum
// split, on wall-clock windows).
//
//natlevet:hotpath
func (n *NATLE) admitted(c *Thread, g int) bool {
	d := n.decision.Load()
	pref := int(d >> 32 & 0xffff)
	if pref >= n.groups {
		return true
	}
	alt := int(d >> 16 & 0xffff)
	permille := int64(d & 0xffff)
	pos := (c.w.now() - n.windowStart.Load()) % n.cfg.Window
	if pos < 0 {
		pos = 0
	}
	if pos*1000 < permille*n.cfg.Window {
		return pref == g
	}
	return alt == g
}

// maybeDecide elects at most one thread per expired window (CAS on
// the window start) to run the decision. decide itself is not a hot
// path: it runs once per window and is free to allocate.
//
//natlevet:hotpath
func (n *NATLE) maybeDecide(c *Thread) {
	now := c.w.now()
	ws := n.windowStart.Load()
	if ws == 0 {
		n.windowStart.CompareAndSwap(0, now)
		return
	}
	if now-ws < n.cfg.Window || !n.windowStart.CompareAndSwap(ws, now) {
		return
	}
	n.decide(now - ws)
}

// decide folds the expired window's per-group commit counts into the
// EWMAs and publishes the next admission decision.
func (n *NATLE) decide(elapsed int64) {
	sec := float64(elapsed) / 1e9
	acqs := make([]uint64, n.groups)
	var total uint64
	for g := 0; g < n.groups; g++ {
		acqs[g] = n.commits[g].v.Swap(0)
		total += acqs[g]
	}
	att := n.inner.st.attempts.Load()
	ab := n.inner.st.aborts.Load()
	dAtt := att - n.decider.lastAttempts.Swap(att)
	dAb := ab - n.decider.lastAborts.Swap(ab)
	var abortFrac float64
	if dAtt > 0 {
		abortFrac = float64(dAb) / float64(dAtt)
	}
	e := make([]float64, n.groups)
	for g := 0; g < n.groups; g++ {
		old := math.Float64frombits(n.ewma[g].Load())
		e[g] = n.cfg.Alpha*(float64(acqs[g])/sec) + (1-n.cfg.Alpha)*old
		n.ewma[g].Store(math.Float64bits(e[g]))
	}

	pref, alt, permille := n.groups, n.groups, int64(1000)
	if total >= n.cfg.Warmup && abortFrac > n.cfg.AbortFrac && n.groups > 1 {
		pref = 0
		for g := 1; g < n.groups; g++ {
			if e[g] > e[pref] {
				pref = g
			}
		}
		alt = (pref + 1) % n.groups
		for g := 0; g < n.groups; g++ {
			if g != pref && e[g] >= e[alt] {
				alt = g
			}
		}
		if den := e[pref] + e[alt]; den > 0 {
			permille = int64(1000 * e[pref] / den)
		}
		if permille < 1 {
			permille = 1
		}
		if permille > 1000 {
			permille = 1000
		}
	}
	n.decision.Store(n.pack(pref, alt, permille))
	cycle := int(n.decider.decisions.Add(1)) - 1

	sample := natle.ModeSample{
		Cycle:         cycle,
		FastestMode:   pref,
		SlicePerMille: permille,
		Acqs:          acqs,
	}
	admit := func(mode int) bool { return mode >= n.groups || mode == 0 }
	if admit(pref) {
		sample.Socket0Share += float64(permille) / 1000
	}
	if permille < 1000 && admit(alt) {
		sample.Socket0Share += float64(1000-permille) / 1000
	}
	n.tl.Lock()
	n.tl.samples = append(n.tl.samples, sample)
	n.tl.Unlock()
}
