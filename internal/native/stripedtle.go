package native

import (
	"sync/atomic"

	"natle/internal/backend"
	"natle/internal/mem"
	"natle/internal/scheme"
	"natle/internal/tle"
)

// NumStripes is the conflict-detection granularity of TLEStriped: the
// address space is folded onto this many sequence words, line by line
// (stripe = line index mod NumStripes). Eight stripes of one line each
// keep the whole stripe block in two or three L1 sets while making
// same-line false conflicts — the malloc-placement effect the TSX
// literature measures — structurally impossible between addresses more
// than a line apart.
const NumStripes = 8

// stripedUndoCap bounds the per-attempt undo log. An attempt that
// overflows it aborts (and, once the retry budget is burned, runs on
// the fallback path, which holds every stripe and needs no undo); the
// repo's critical sections write a handful of words, so the cap exists
// for robustness, not tuning.
const stripedUndoCap = 128

// seqStripe is one sequence word on its own cache line: every
// optimistic reader of the stripe polls it, so a neighboring stripe's
// writer must not invalidate it.
type seqStripe struct {
	seq atomic.Uint64
	_   [56]byte
}

// stripeOf folds a word address onto its stripe, whole lines at a time
// so words that share a cache line always share a stripe.
func stripeOf(a int) int { return (a / mem.WordsPerLine) & (NumStripes - 1) }

// TLEStriped is native-tle with the per-lock sequence word sharded per
// word-range: NumStripes seqlock words, each covering the lines that
// fold onto it. An optimistic attempt snapshots a stripe on first
// touch, validates every touched stripe after each load, and
// CAS-acquires a stripe (even -> odd) before its first store into it —
// so two writers touching disjoint stripes commit in parallel, where
// the single-seq TLE would serialize them on one word. Writes keep an
// undo log, which is what makes writer aborts possible at all (the
// single-seq design upgrades to an irrevocable writer instead).
//
// The retry loop, capped full-jitter backoff, anti-lemming deferral,
// starvation watchdog, stats shape, and fault hooks are all shared
// with TLE.
//
//natlevet:percpu
type TLEStriped struct {
	// stripes are polled on every transactional access by every
	// optimistic attempt; one line each (see seqStripe).
	stripes [NumStripes]seqStripe

	// st's counters are bumped by every thread on every attempt — true
	// sharing, which padding between them cannot fix; the block only
	// has to stay off the stripes' lines.
	st stats
	_  [8]byte

	// Cold, read-only after NewTLEStriped.
	attempts int
	backoff  tle.Backoff
	_        [40]byte
}

// stripedTxn is one optimistic striped attempt in flight on a thread.
// touched is the attempt's stripe footprint (0 untouched, 1 read,
// 2 write-acquired); snap holds, per touched stripe, the sequence value
// the attempt expects to observe — even as snapshotted for reads,
// bumped to the odd held value after a write acquisition.
type stripedTxn struct {
	active   bool
	lock     *TLEStriped
	spurious int // injected spurious-abort countdown (0 = unarmed)
	budget   int // injected access budget (0 = unlimited)
	nUndo    int
	touched  [NumStripes]uint8
	snap     [NumStripes]uint64
	undoA    [stripedUndoCap]int32
	undoV    [stripedUndoCap]uint64
}

// busySignal unwinds a striped attempt that found a stripe held by a
// writer (odd sequence): the anti-lemming outcome, deferred without
// burning an optimistic attempt, exactly like the single-seq TLE's
// pre-attempt lock-held check.
type busySignal struct{}

// stripedLoad is Thread.Load inside a striped attempt: snapshot the
// stripe on first touch, read the word, then validate the attempt's
// whole stripe footprint (a writer holds its stripes odd until commit,
// so any dirty value it published forces a sequence mismatch here).
//
//natlevet:hotpath
func (c *Thread) stripedLoad(a int) uint64 {
	st := &c.stx
	s := stripeOf(a)
	if st.touched[s] == 0 {
		q := st.lock.stripes[s].seq.Load()
		if q&1 == 1 {
			panic(busySignal{})
		}
		st.snap[s] = q
		st.touched[s] = 1
	}
	v := c.w.mem[a].Load()
	for i := range st.touched {
		if st.touched[i] != 0 && st.lock.stripes[i].seq.Load() != st.snap[i] {
			panic(abortSignal{})
		}
	}
	if st.spurious > 0 || st.budget > 0 {
		c.stxAccess()
	}
	return v
}

// stripedStore is Thread.Store inside a striped attempt: CAS-acquire
// the stripe (even -> odd) on first write into it, log the old value,
// then write in place. Unlike the single-seq upgrade, acquiring one
// stripe does not make the attempt irrevocable — a later validation
// failure rolls the log back and releases every held stripe.
//
//natlevet:hotpath
func (c *Thread) stripedStore(a int, v uint64) {
	st := &c.stx
	if st.spurious > 0 || st.budget > 0 {
		c.stxAccess()
	}
	s := stripeOf(a)
	if st.touched[s] != 2 {
		sp := &st.lock.stripes[s].seq
		if st.touched[s] == 0 {
			q := sp.Load()
			if q&1 == 1 {
				panic(busySignal{})
			}
			st.snap[s] = q
		}
		if !sp.CompareAndSwap(st.snap[s], st.snap[s]+1) {
			panic(abortSignal{})
		}
		st.snap[s]++ // the held (odd) value is what we now expect to see
		st.touched[s] = 2
	}
	if st.nUndo == stripedUndoCap {
		panic(abortSignal{})
	}
	st.undoA[st.nUndo] = int32(a)
	st.undoV[st.nUndo] = c.w.mem[a].Load()
	st.nUndo++
	c.w.mem[a].Store(v)
}

// stxAccess charges one transactional access against the striped
// attempt's injected countdown and budget. Striped attempts stay
// abortable for their whole lifetime (the undo log), so — unlike the
// single-seq writer upgrade — a spurious abort can fire after stores.
//
//natlevet:hotpath
func (c *Thread) stxAccess() {
	if c.stx.spurious > 0 {
		c.stx.spurious--
		if c.stx.spurious == 0 {
			c.w.inj.hot.counters.spurious.Add(1)
			panic(abortSignal{})
		}
	}
	if c.stx.budget > 0 {
		c.stx.budget--
		if c.stx.budget == 0 {
			panic(abortSignal{})
		}
	}
}

// NewTLEStriped builds a striped native-tle lock. attempts <= 0
// selects DefaultAttempts; the zero backoff selects the repo-wide
// capped full-jitter defaults.
func NewTLEStriped(attempts int, backoff tle.Backoff) *TLEStriped {
	if attempts <= 0 {
		attempts = DefaultAttempts
	}
	return &TLEStriped{attempts: attempts, backoff: backoff}
}

// Name implements backend.CS.
func (t *TLEStriped) Name() string { return "native-tle-striped" }

// Stats implements scheme.BackendInstance.
func (t *TLEStriped) Stats() scheme.Stats { return scheme.Stats{TLE: t.st.tleStats()} }

// Critical implements backend.CS: optimistic striped attempts with
// capped full-jitter backoff, anti-lemming deferral while a stripe is
// writer-held, the starvation watchdog, then the all-stripes fallback.
//
//natlevet:hotpath
func (t *TLEStriped) Critical(bc backend.Ctx, body func()) {
	c := bc.(*Thread)
	if c.tx.active || c.stx.active {
		// Flat nesting: the enclosing optimistic section is the
		// atomicity domain.
		body()
		return
	}
	t.st.ops.Add(1)
	waits := 0
	for attempt := 0; attempt < t.attempts; {
		ok, busy := t.try(c, body)
		if busy {
			// A writer held one of the stripes we touched. Defer
			// without burning an attempt (anti-lemming), bounded by
			// the watchdog. The single-seq TLE makes this check before
			// starting an attempt; with stripes the footprint is only
			// discovered by running, so the deferral happens on unwind.
			t.st.lockHeldWaits.Add(1)
			waits++
			if waits > maxLockHeldWaits {
				t.st.starvations.Add(1)
				break
			}
			c.gap(attempt, t.backoff)
			continue
		}
		t.st.attempts.Add(1)
		if ok {
			t.st.commits.Add(1)
			return
		}
		t.st.aborts.Add(1)
		attempt++
		c.gap(attempt, t.backoff)
	}
	// Fallback: acquire every stripe in index order (deadlock-free
	// against other fallbacks; optimists never spin while holding) and
	// run pessimistically.
	t.st.fallbacks.Add(1)
	t.lockAll(c)
	if inj := c.w.inj; inj != nil {
		inj.csStall(c)
	}
	body()
	t.unlockAll()
}

// try runs one optimistic striped attempt. The attempt unwinds via a
// busySignal or abortSignal panic from Thread.stripedLoad/stripedStore;
// commit validates the read footprint (written stripes are still held,
// so only reads can have been invalidated) and releases every written
// stripe two past its snapshot.
//
//natlevet:hotpath
//natlevet:seqlock
func (t *TLEStriped) try(c *Thread, body func()) (ok, busy bool) {
	st := &c.stx
	st.active = true
	st.lock = t
	st.nUndo = 0
	st.touched = [NumStripes]uint8{}
	st.spurious, st.budget = 0, 0
	if inj := c.w.inj; inj != nil {
		st.spurious, st.budget = inj.txStart(c)
	}
	defer func() {
		r := recover()
		switch r.(type) {
		case nil:
			ok = true
			for i := range st.touched {
				if st.touched[i] == 1 && t.stripes[i].seq.Load() != st.snap[i] {
					ok = false
					break
				}
			}
			if ok {
				if st.nUndo > 0 {
					// Writer commit. An injected commit delay stretches
					// the held window first (concurrent readers keep
					// failing validation), the native face of a delayed
					// cross-socket invalidation.
					if inj := c.w.inj; inj != nil {
						inj.commitDelay(c)
					}
				}
				t.release(st)
			} else {
				t.rollback(c, st)
			}
		case busySignal:
			t.rollback(c, st)
			busy = true
		case abortSignal:
			t.rollback(c, st)
		default:
			// A real panic (workload bug) must propagate, but not
			// while wedging every other thread on odd stripes or
			// leaving half-applied writes in quiesced memory.
			t.rollback(c, st)
			st.active = false
			panic(r)
		}
		st.active = false
	}()
	body()
	return
}

// release stores every written stripe's sequence two past the value it
// was acquired from (snap holds the odd in-progress value, so +1),
// publishing the attempt's writes — or, after a rollback, its absence.
func (t *TLEStriped) release(st *stripedTxn) {
	for i := range st.touched {
		if st.touched[i] == 2 {
			t.stripes[i].seq.Store(st.snap[i] + 1)
		}
	}
}

// rollback undoes the attempt's writes in reverse order while its
// stripes are still held, then releases them. Concurrent readers never
// trusted the dirty values (the stripes were odd throughout), and the
// sequence still advances so their snapshots correctly invalidate.
func (t *TLEStriped) rollback(c *Thread, st *stripedTxn) {
	for i := st.nUndo - 1; i >= 0; i-- {
		c.w.mem[st.undoA[i]].Store(st.undoV[i])
	}
	st.nUndo = 0
	t.release(st)
}

// lockAll acquires every stripe in index order (even -> odd), spinning
// with capped backoff per stripe. Fallbacks order consistently against
// each other, and optimists holding a stripe always finish and release
// without blocking, so the sweep cannot deadlock.
//
//natlevet:hotpath
func (t *TLEStriped) lockAll(c *Thread) {
	for i := range t.stripes {
		sp := &t.stripes[i].seq
		for n := 0; ; n++ {
			s := sp.Load()
			if s&1 == 0 && sp.CompareAndSwap(s, s+1) {
				break
			}
			a := n
			if a > 6 {
				a = 6
			}
			c.gap(a, t.backoff)
		}
	}
}

// unlockAll releases every stripe (odd -> even, advanced past every
// snapshot taken before the acquisition).
func (t *TLEStriped) unlockAll() {
	for i := range t.stripes {
		t.stripes[i].seq.Add(1)
	}
}
