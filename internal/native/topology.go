package native

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// sysCPURoot is where Linux exposes per-CPU topology; ReadTopology
// takes the root as a parameter so tests can point it at a fixture
// tree, and NewWorld falls back to fill-first striping when the real
// path is absent (non-Linux hosts, stripped-down containers).
const sysCPURoot = "/sys/devices/system/cpu"

// Topology is the CPU topology discovered from sysfs: for each online
// CPU (in CPU-id order) the package it belongs to and its core id
// within that package. Package ids are renumbered densely in order of
// first appearance, so they serve directly as thread-group ordinals
// regardless of how sparsely the kernel numbered the physical
// packages.
type Topology struct {
	CPUPackage []int // dense package ordinal per CPU, CPU-id order
	CPUCore    []int // core id per CPU, CPU-id order
	Packages   int   // distinct packages observed
}

// ReadTopology parses <root>/cpu*/topology/{physical_package_id,
// core_id}. CPUs without a topology directory (offline CPUs export
// none) are skipped; an error is returned only when no CPU yields a
// package id, so a partially populated sysfs still produces a usable
// map.
func ReadTopology(root string) (*Topology, error) {
	entries, err := os.ReadDir(root)
	if err != nil {
		return nil, err
	}
	type cpuTopo struct{ cpu, pkg, core int }
	var cpus []cpuTopo
	for _, e := range entries {
		name := e.Name()
		if !strings.HasPrefix(name, "cpu") {
			continue
		}
		id, err := strconv.Atoi(name[len("cpu"):])
		if err != nil {
			continue // cpufreq, cpuidle, ...
		}
		dir := filepath.Join(root, name, "topology")
		pkg, err := readSysfsInt(filepath.Join(dir, "physical_package_id"))
		if err != nil {
			continue
		}
		core, err := readSysfsInt(filepath.Join(dir, "core_id"))
		if err != nil {
			core = id // exotic sysfs: fall back to the cpu id
		}
		cpus = append(cpus, cpuTopo{cpu: id, pkg: pkg, core: core})
	}
	if len(cpus) == 0 {
		return nil, fmt.Errorf("native: no cpu topology under %s", root)
	}
	sort.Slice(cpus, func(i, j int) bool { return cpus[i].cpu < cpus[j].cpu })
	t := &Topology{
		CPUPackage: make([]int, len(cpus)),
		CPUCore:    make([]int, len(cpus)),
	}
	dense := map[int]int{}
	for i, c := range cpus {
		g, ok := dense[c.pkg]
		if !ok {
			g = len(dense)
			dense[c.pkg] = g
		}
		t.CPUPackage[i] = g
		t.CPUCore[i] = c.core
	}
	t.Packages = len(dense)
	return t, nil
}

// readSysfsInt reads one small integer file ("0\n").
func readSysfsInt(path string) (int, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return 0, err
	}
	return strconv.Atoi(strings.TrimSpace(string(b)))
}
