package native

import (
	"sync"
	"sync/atomic"

	"natle/internal/backend"
	"natle/internal/scheme"
)

// Mutex is the native plain-lock baseline: a sync.Mutex, never
// elided.
//
//natlevet:percpu
type Mutex struct {
	// The lock word all waiters spin in the kernel on and the
	// release-side acquisition counter each own a line: the counter
	// bump on unlock must not invalidate the word being acquired.
	mu sync.Mutex
	_  [56]byte

	acquires atomic.Uint64
	_        [56]byte
}

// NewMutex builds a native-mutex instance.
func NewMutex() *Mutex { return &Mutex{} }

// Critical implements backend.CS.
//
//natlevet:hotpath
func (m *Mutex) Critical(bc backend.Ctx, body func()) {
	c := bc.(*Thread)
	m.mu.Lock()
	if inj := c.w.inj; inj != nil {
		inj.csStall(c)
	}
	body()
	m.mu.Unlock()
	m.acquires.Add(1)
}

// Name implements backend.CS.
func (m *Mutex) Name() string { return "native-mutex" }

// Stats implements scheme.BackendInstance. Lock baselines have no
// elision counters; acquisitions ride in Extra.
func (m *Mutex) Stats() scheme.Stats {
	return scheme.Stats{Extra: map[string]uint64{"acquires": m.acquires.Load()}}
}

// Spin is a test-and-test-and-set spinlock over one atomic word, the
// native mirror of the simulated "lock" scheme.
//
//natlevet:percpu
type Spin struct {
	// Waiters poll word in the test-and-test-and-set read loop; the
	// acquisition counter lives on its own line so a release-side bump
	// does not kick every spinner's cached copy.
	word atomic.Uint32
	_    [60]byte

	acquires atomic.Uint64
	_        [56]byte
}

// NewSpin builds a native-spin instance.
func NewSpin() *Spin { return &Spin{} }

// Critical implements backend.CS.
//
//natlevet:hotpath
func (s *Spin) Critical(bc backend.Ctx, body func()) {
	c := bc.(*Thread)
	for {
		if s.word.Load() == 0 && s.word.CompareAndSwap(0, 1) {
			break
		}
		// Test-and-test-and-set: spin on the read path, with a short
		// pause so the owner's release is not drowned in CAS traffic.
		c.spinWait(int64(40 + c.Intn(40)))
	}
	if inj := c.w.inj; inj != nil {
		inj.csStall(c)
	}
	body()
	s.word.Store(0)
	s.acquires.Add(1)
}

// Name implements backend.CS.
func (s *Spin) Name() string { return "native-spin" }

// Stats implements scheme.BackendInstance.
func (s *Spin) Stats() scheme.Stats {
	return scheme.Stats{Extra: map[string]uint64{"acquires": s.acquires.Load()}}
}
