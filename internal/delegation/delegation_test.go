package delegation

import (
	"testing"

	"natle/internal/htm"
	"natle/internal/machine"
	"natle/internal/sim"
	"natle/internal/vtime"
)

func TestOpEncoding(t *testing.T) {
	for _, c := range []struct {
		code int
		key  int64
	}{{OpInsert, 0}, {OpDelete, 12345}, {OpContains, 1 << 40}} {
		code, key := MakeOp(c.code, c.key).Decode()
		if code != c.code || key != c.key {
			t.Errorf("round trip (%d,%d) -> (%d,%d)", c.code, c.key, code, key)
		}
	}
}

// echoExec records executed operations and returns key%2==0.
type echoExec struct{ got []Op }

func (e *echoExec) Execute(c *sim.Ctx, code int, key int64) bool {
	e.got = append(e.got, MakeOp(code, key))
	return key%2 == 0
}

func TestSubmitServeRoundTrip(t *testing.T) {
	e := sim.New(machine.LargeX52(), machine.FillSocketFirst{}, 2, 1)
	s := htm.NewSystem(e, 1<<12)
	e.Spawn(nil, func(c *sim.Ctx) {
		ch := NewChannel(s, c, 1, 0)
		exec := &echoExec{}
		stop := false
		e.Spawn(c, func(w *sim.Ctx) { // server
			for !stop {
				if !ch.Serve(w, exec) {
					w.AdvanceIdle(200 * vtime.Nanosecond)
					w.Yield()
				}
			}
		})
		e.Spawn(c, func(w *sim.Ctx) { // client in slot 0
			res := ch.Submit(w, 0, []Op{
				MakeOp(OpInsert, 2), MakeOp(OpDelete, 3), MakeOp(OpContains, 4),
			})
			if !res[0] || res[1] || !res[2] {
				t.Errorf("results = %v, want [true false true]", res)
			}
			// Second batch reuses the slot.
			res = ch.Submit(w, 0, []Op{MakeOp(OpInsert, 7)})
			if res[0] {
				t.Errorf("second batch result = %v, want [false]", res)
			}
			stop = true
		})
		c.SetIdle(true)
		c.WaitOthers(vtime.Microsecond)
		if len(exec.got) != 4 {
			t.Errorf("server executed %d ops, want 4", len(exec.got))
		}
	})
	e.Run()
}

func TestManyClientsAllServed(t *testing.T) {
	const clients, perClient = 8, 40
	e := sim.New(machine.LargeX52(), machine.FillSocketFirst{}, clients+2, 3)
	s := htm.NewSystem(e, 1<<14)
	e.Spawn(nil, func(c *sim.Ctx) {
		ch := NewChannel(s, c, clients, 0)
		exec := &echoExec{}
		stop := false
		done := 0
		e.SpawnOn(c, 17, func(w *sim.Ctx) {
			for !stop {
				if !ch.Serve(w, exec) {
					w.AdvanceIdle(200 * vtime.Nanosecond)
					w.Yield()
				}
			}
		})
		for i := 0; i < clients; i++ {
			slot := i
			e.Spawn(c, func(w *sim.Ctx) {
				for j := 0; j < perClient; j++ {
					ch.Submit(w, slot, []Op{MakeOp(OpInsert, int64(slot*1000+j))})
				}
				done++
			})
		}
		c.SetIdle(true)
		c.WaitUntil(vtime.Microsecond, func() bool { return done == clients })
		stop = true
		c.WaitOthers(vtime.Microsecond)
		if len(exec.got) != clients*perClient {
			t.Errorf("served %d ops, want %d", len(exec.got), clients*perClient)
		}
	})
	e.Run()
}

func TestBadBatchPanics(t *testing.T) {
	e := sim.New(machine.SmallI7(), machine.FillSocketFirst{}, 1, 5)
	s := htm.NewSystem(e, 1<<12)
	e.Spawn(nil, func(c *sim.Ctx) {
		ch := NewChannel(s, c, 1, 0)
		defer func() {
			if recover() == nil {
				t.Error("expected panic for oversized batch")
			}
		}()
		ch.Submit(c, 0, make([]Op, MaxBatch+1))
	})
	e.Run()
}
