// Package delegation implements the client/server baseline the paper
// explored before settling on NATLE (Section 4.1): each set operation
// is delegated to a server thread on the socket where its key's data
// lives, over message-passing channels built on shared (simulated)
// memory.
//
// The key range is split in half; a dedicated server thread per socket
// owns one half (so the half's nodes stay local to that socket's
// caches) and executes operations sent by client threads. Clients may
// pack several operations into one request (the batching optimization
// the paper says recovered some of the overhead).
//
// As in the paper, delegation roughly doubles the per-operation
// execution rate of the servers (all accesses are socket-local), but
// the round-trip coordination between clients and servers costs more
// than it saves at moderate thread counts.
package delegation

import (
	"natle/internal/htm"
	"natle/internal/mem"
	"natle/internal/sim"
	"natle/internal/vtime"
)

// Op encodes one delegated set operation in a single word.
type Op uint64

// Operation codes.
const (
	OpInsert   = 1
	OpDelete   = 2
	OpContains = 3
)

// MakeOp packs an opcode and key.
func MakeOp(code int, key int64) Op { return Op(uint64(key)<<2 | uint64(code)) }

// Decode unpacks an operation.
func (o Op) Decode() (code int, key int64) { return int(o & 3), int64(o >> 2) }

// MaxBatch is the largest number of operations per request message
// (bounded by the one-line request layout).
const MaxBatch = 6

// Request/response slot layout. Each client-server pair has one slot:
// a request line written by the client and polled by the server, and a
// response line written by the server and polled by the client —
// separate lines so the two directions do not false-share.
const (
	reqSeq   = 0 // word: client increments to publish a request
	reqCount = 1 // word: operations in this request
	reqOps   = 2 // words 2..7: packed operations

	respSeq    = 0 // word (second line): server echoes reqSeq when done
	respResult = 1 // word: bitmask of per-op boolean results
)

// Executor runs delegated operations on the server's local data.
type Executor interface {
	Execute(c *sim.Ctx, code int, key int64) bool
}

// Channel is the per-client mailbox array for one server.
type Channel struct {
	sys     *htm.System
	slots   mem.Addr // nClients * 2 lines
	clients int
}

// NewChannel allocates mailboxes for nClients, homed on the server's
// socket.
func NewChannel(sys *htm.System, c *sim.Ctx, nClients, socket int) *Channel {
	return &Channel{
		sys:     sys,
		slots:   sys.AllocHome(c, nClients*2*mem.WordsPerLine, socket),
		clients: nClients,
	}
}

func (ch *Channel) reqLine(slot int) mem.Addr {
	return ch.slots + mem.Addr(slot*2*mem.WordsPerLine)
}
func (ch *Channel) respLine(slot int) mem.Addr {
	return ch.reqLine(slot) + mem.WordsPerLine
}

// Submit sends ops (at most MaxBatch) from the client in the given
// slot and blocks until the server responds; it returns the per-op
// boolean results.
func (ch *Channel) Submit(c *sim.Ctx, slot int, ops []Op) []bool {
	if len(ops) == 0 || len(ops) > MaxBatch {
		panic("delegation: bad batch size")
	}
	req, resp := ch.reqLine(slot), ch.respLine(slot)
	seq := ch.sys.Read(c, req+reqSeq) + 1
	for i, op := range ops {
		ch.sys.Write(c, req+reqOps+mem.Addr(i), uint64(op))
	}
	ch.sys.Write(c, req+reqCount, uint64(len(ops)))
	ch.sys.Write(c, req+reqSeq, seq) // publish last
	backoff := 100 * vtime.Nanosecond
	for ch.sys.Read(c, resp+respSeq) != seq {
		c.AdvanceIdle(backoff)
		if backoff < 2*vtime.Microsecond {
			backoff += backoff / 2
		}
		c.Yield()
	}
	bits := ch.sys.Read(c, resp+respResult)
	out := make([]bool, len(ops))
	for i := range out {
		out[i] = bits&(1<<uint(i)) != 0
	}
	return out
}

// Serve polls all slots once, executing any pending requests on exec;
// it reports whether any work was found. The server thread calls this
// in a loop until its stop condition holds.
func (ch *Channel) Serve(c *sim.Ctx, exec Executor) bool {
	progress := false
	for slot := 0; slot < ch.clients; slot++ {
		req, resp := ch.reqLine(slot), ch.respLine(slot)
		seq := ch.sys.Read(c, req+reqSeq)
		if seq == 0 || ch.sys.Read(c, resp+respSeq) == seq {
			continue
		}
		n := int(ch.sys.Read(c, req+reqCount))
		var bits uint64
		for i := 0; i < n && i < MaxBatch; i++ {
			code, key := Op(ch.sys.Read(c, req+reqOps+mem.Addr(i))).Decode()
			if exec.Execute(c, code, key) {
				bits |= 1 << uint(i)
			}
		}
		ch.sys.Write(c, resp+respResult, bits)
		ch.sys.Write(c, resp+respSeq, seq)
		progress = true
	}
	return progress
}
